# Development targets. `make check` is tier-1 plus the race suite in one
# command.

GO ?= go

.PHONY: check build vet test race bench bench-json

check: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The parallel engine's determinism tests double as its data-race check.
race:
	$(GO) test -race ./internal/parallel ./internal/sim ./internal/experiments

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Machine-readable benchmark results (the BENCH_*.json trajectory).
bench-json:
	$(GO) run ./cmd/ethbench
