// Command ethmarkov queries the closed-form Markov analysis: revenue
// breakdowns, profitability thresholds, and stationary probabilities.
//
// Examples:
//
//	ethmarkov -alpha 0.35 -gamma 0.5               revenue breakdown
//	ethmarkov -threshold -gamma 0.5                thresholds (both scenarios + Bitcoin)
//	ethmarkov -alpha 0.35 -gamma 0.5 -pi 4,1       one stationary probability
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/ethselfish/ethselfish"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethmarkov:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethmarkov", flag.ContinueOnError)
	var (
		alpha     = fs.Float64("alpha", 0.3, "selfish pool hash-power share (0, 0.5)")
		gamma     = fs.Float64("gamma", 0.5, "honest tie-break fraction toward the pool [0, 1]")
		threshold = fs.Bool("threshold", false, "print profitability thresholds instead of revenues")
		ku        = fs.Float64("ku", -1, "flat uncle reward; negative selects Ethereum's Ku(.)")
		maxDepth  = fs.Int("maxdepth", 6, "uncle reference depth limit; 0 means unlimited")
		piQuery   = fs.String("pi", "", "stationary probability query, formatted as Ls,Lh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule := ethselfish.EthereumSchedule()
	scheduleName := "Ethereum Ku(.)"
	if *ku >= 0 {
		depth := *maxDepth
		if depth == 0 {
			depth = ethselfish.NoDepthLimit
		}
		var err error
		schedule, err = ethselfish.ConstantSchedule(*ku, depth)
		if err != nil {
			return err
		}
		scheduleName = fmt.Sprintf("flat Ku=%g", *ku)
	}

	if *threshold {
		return printThresholds(w, *gamma, schedule, scheduleName)
	}

	analysis, err := ethselfish.Analyze(*alpha, *gamma, ethselfish.WithSchedule(schedule))
	if err != nil {
		return err
	}

	if *piQuery != "" {
		parts := strings.SplitN(*piQuery, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -pi query %q: want Ls,Lh", *piQuery)
		}
		ls, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return fmt.Errorf("bad -pi query %q: %w", *piQuery, err)
		}
		lh, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("bad -pi query %q: %w", *piQuery, err)
		}
		fmt.Fprintf(w, "pi(%d,%d) = %.10g\n", ls, lh, analysis.StateProbability(ls, lh))
		return nil
	}

	rev := analysis.Revenue()
	fmt.Fprintf(w, "analysis: alpha=%.4f gamma=%.2f schedule=%s\n", *alpha, *gamma, scheduleName)
	fmt.Fprintf(w, "%-22s %12s %12s\n", "reward rate", "pool", "honest")
	fmt.Fprintf(w, "%-22s %12.6f %12.6f\n", "static (Eq. 3/4)", rev.PoolStatic, rev.HonestStatic)
	fmt.Fprintf(w, "%-22s %12.6f %12.6f\n", "uncle (Eq. 5/6)", rev.PoolUncle, rev.HonestUncle)
	fmt.Fprintf(w, "%-22s %12.6f %12.6f\n", "nephew (Eq. 8/9)", rev.PoolNephew, rev.HonestNephew)
	fmt.Fprintf(w, "regular-block rate %.6f, uncle rate %.6f\n", rev.RegularRate, rev.UncleRate)
	fmt.Fprintf(w, "absolute revenue scenario 1: pool %.6f honest %.6f (baseline alpha=%.4f)\n",
		rev.Pool(ethselfish.Scenario1), rev.Honest(ethselfish.Scenario1), *alpha)
	fmt.Fprintf(w, "absolute revenue scenario 2: pool %.6f honest %.6f\n",
		rev.Pool(ethselfish.Scenario2), rev.Honest(ethselfish.Scenario2))
	fmt.Fprintf(w, "profitable: scenario1=%v scenario2=%v\n",
		analysis.Profitable(ethselfish.Scenario1), analysis.Profitable(ethselfish.Scenario2))
	return nil
}

func printThresholds(w io.Writer, gamma float64, schedule ethselfish.Schedule, scheduleName string) error {
	bitcoin, err := ethselfish.BitcoinThreshold(gamma)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "profitability thresholds at gamma=%.2f (%s)\n", gamma, scheduleName)
	fmt.Fprintf(w, "bitcoin (Eyal-Sirer): %.4f\n", bitcoin)
	for _, scenario := range []ethselfish.Scenario{ethselfish.Scenario1, ethselfish.Scenario2} {
		t, err := ethselfish.ProfitThreshold(gamma,
			ethselfish.WithSchedule(schedule), ethselfish.WithScenario(scenario))
		if err != nil {
			fmt.Fprintf(w, "ethereum %v: no threshold below 0.5 (%v)\n", scenario, err)
			continue
		}
		fmt.Fprintf(w, "ethereum %v: %.4f\n", scenario, t)
	}
	return nil
}
