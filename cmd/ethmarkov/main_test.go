package main

import (
	"strings"
	"testing"
)

func TestRunRevenueBreakdown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alpha", "0.35", "-gamma", "0.5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"static (Eq. 3/4)", "uncle (Eq. 5/6)", "profitable"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunThresholds(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-threshold", "-gamma", "0.5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "bitcoin (Eyal-Sirer): 0.2500") {
		t.Errorf("output missing Bitcoin threshold:\n%s", out)
	}
	if !strings.Contains(out, "scenario1: 0.054") {
		t.Errorf("output missing scenario-1 threshold:\n%s", out)
	}
}

func TestRunPiQuery(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alpha", "0.4", "-pi", "0,0"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pi(0,0)") {
		t.Errorf("output = %q", b.String())
	}
	if err := run([]string{"-pi", "junk"}, &b); err == nil {
		t.Error("bad pi query should fail")
	}
	if err := run([]string{"-pi", "a,b"}, &b); err == nil {
		t.Error("non-numeric pi query should fail")
	}
}

func TestRunFlatScheduleThresholds(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-threshold", "-gamma", "0.5", "-ku", "0.5"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scenario1: 0.163") {
		t.Errorf("flat-Ku threshold missing:\n%s", b.String())
	}
}

func TestRunBadParams(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alpha", "0.9"}, &b); err == nil {
		t.Error("alpha=0.9 should fail")
	}
	if err := run([]string{"-ku", "-2", "-nonsense"}, &b); err == nil {
		t.Error("bogus flag should fail")
	}
}
