package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func TestRunStaticExperiments(t *testing.T) {
	for _, name := range []string{"table1", "fig6", "fig7"} {
		var b strings.Builder
		if err := run(context.Background(), []string{name}, &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunQuickSimExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-quick", "table2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Expectation") {
		t.Errorf("table2 output missing expectation row:\n%s", b.String())
	}
}

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-csv", "fig6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "pool,share") {
		t.Errorf("CSV output = %q", b.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"nonsense"}, &b); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run(context.Background(), []string{}, &b); err == nil {
		t.Error("missing experiment should fail")
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Every experiment appears, including the new engines.
	for _, name := range experimentNames() {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing experiment %q", name)
		}
	}
	// The strategy section is generated from the registry: names,
	// parameter ranges, and defaults.
	for _, want := range []string{
		"stubborn[:lead=0..1,fork=0..1,trail=0..16]",
		"eager-publish[:lead=2..1048576]",
		"algorithm1",
		"honest",
		"trail=0..16 (0)",
		"trail-stubborn (= stubborn:lead=1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
	if err := run(context.Background(), []string{"-list", "fig8"}, &b); err == nil {
		t.Error("-list with an experiment argument should fail")
	}
}

func TestRunTournamentFromSpecStrings(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), []string{
		"-quick", "-runs", "1", "-blocks", "2000",
		"-strategies", "algorithm1,stubborn:lead=1,trail=2",
		"tournament",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Tournament") {
		t.Errorf("tournament output missing title:\n%s", out)
	}
	if !strings.Contains(out, "stubborn:lead=1,trail=2") {
		t.Errorf("tournament output missing the multi-parameter spec:\n%s", out)
	}
}

func TestRunStrategiesFromSpecStrings(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), []string{
		"-quick", "-runs", "1", "-blocks", "2000",
		"-strategies", "honest,eager-publish-3",
		"strategies",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy alias is normalized to its canonical spec in the output.
	if !strings.Contains(b.String(), "eager-publish:lead=3") {
		t.Errorf("strategies output missing normalized spec:\n%s", b.String())
	}
}

func TestRunRejectsBadSpecStrings(t *testing.T) {
	var b strings.Builder
	for _, specs := range []string{"nonsense", "stubborn:lead=9", "stubborn:depth=1"} {
		if err := run(context.Background(), []string{"-strategies", specs, "tournament"}, &b); err == nil {
			t.Errorf("-strategies %q should fail before simulating", specs)
		}
	}
	// A lone entrant is rejected up front, even for "all" — before the
	// sweep burns through every earlier experiment.
	for _, name := range []string{"tournament", "all"} {
		err := run(context.Background(), []string{"-strategies", "honest", name}, &b)
		if err == nil || !strings.Contains(err.Error(), "at least 2 specs") {
			t.Errorf("%s with one spec: err = %v, want early entrant-count rejection", name, err)
		}
	}
	// bestresponse searches a fixed grid; -strategies is rejected
	// rather than silently ignored.
	err := run(context.Background(), []string{"-strategies", "algorithm1,stubborn:trail=4", "bestresponse"}, &b)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("bestresponse with -strategies: err = %v, want rejection", err)
	}
}

func TestParseSpecList(t *testing.T) {
	got, err := parseSpecList("algorithm1,stubborn:lead=1,trail=2,honest")
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.StrategySpec{
		sim.MustStrategySpec("algorithm1"),
		sim.MustStrategySpec("stubborn:lead=1,trail=2"),
		sim.MustStrategySpec("honest"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseSpecList = %v, want %v", got, want)
	}
	if specs, err := parseSpecList(""); err != nil || specs != nil {
		t.Errorf("empty list = %v, %v", specs, err)
	}
}

func TestBuildAllNamesResolve(t *testing.T) {
	// Every advertised experiment must resolve (analytic ones complete;
	// simulation ones are exercised in quick mode elsewhere).
	for _, name := range experimentNames() {
		switch name {
		case "fig8", "table2", "diffablation", "strategies", "tournament",
			"bestresponse", "profitability":
			continue // heavy: covered by TestRunQuickSimExperiment and package tests
		}
		if _, err := build(name, experiments.Quick(), nil, nil); err != nil {
			t.Errorf("build(%q): %v", name, err)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("paper harness end-to-end run is slow")
	}
	var b strings.Builder
	if err := run(context.Background(), []string{"-quick", "-runs", "1", "-blocks", "4000", "all"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
		"Table II", "Sec. VI", "Difficulty-rule ablation", "Strategy comparison",
		"Pool wars", "Tournament", "Best response", "Profitability",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	err := run(ctx, []string{"-quick", "-runs", "1", "-blocks", "2000", "table2"}, &b)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The resume hint appears only when a checkpoint would hold the
	// completed rows.
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	err = run(ctx, []string{"-quick", "-runs", "1", "-blocks", "2000", "-checkpoint", ckpt, "table2"}, &b)
	if !errors.Is(err, context.Canceled) || !strings.Contains(err.Error(), "rerun the same command to resume") {
		t.Errorf("err = %v, want context.Canceled with a resume hint", err)
	}
}

func TestRunCheckpointFlag(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	args := []string{"-quick", "-runs", "1", "-blocks", "2000", "-checkpoint", ckpt, "table2"}
	var first, second strings.Builder
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	// The second invocation replays the journal instead of recomputing;
	// output must be bit-identical.
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("checkpointed rerun produced different output")
	}
	// A corrupt journal is rejected up front, not silently resumed.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-quick", "-checkpoint", bad, "table2"}, &second)
	if !errors.Is(err, experiments.ErrJournal) {
		t.Errorf("corrupt checkpoint err = %v, want ErrJournal", err)
	}
}

func TestRunAuditFlag(t *testing.T) {
	var plain, audited strings.Builder
	if err := run(context.Background(), []string{"-quick", "-runs", "1", "-blocks", "2000", "table2"}, &plain); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-quick", "-runs", "1", "-blocks", "2000", "-audit", "-audit-every", "1", "table2"}, &audited)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != audited.String() {
		t.Error("auditing changed experiment output")
	}
}

func TestRunProfitabilityRuleFlag(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), []string{
		"-quick", "-runs", "1", "-blocks", "3000",
		"-rule", "eip100,bitcoin", "profitability",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "eip100") || !strings.Contains(out, "bitcoin-style") {
		t.Errorf("profitability output missing requested rules:\n%s", out)
	}
	if strings.Contains(out, "static") {
		t.Errorf("profitability output contains unrequested static rule:\n%s", out)
	}
	// Bad rules and misplaced -rule fail before any simulation.
	if err := run(context.Background(), []string{"-rule", "bogus", "profitability"}, &b); err == nil {
		t.Error("-rule bogus should fail")
	}
	if err := run(context.Background(), []string{"-rule", "eip100", "fig8"}, &b); err == nil {
		t.Error("-rule with a non-profitability experiment should fail")
	}
}
