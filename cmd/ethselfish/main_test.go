package main

import (
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/experiments"
)

func TestRunStaticExperiments(t *testing.T) {
	for _, name := range []string{"table1", "fig6", "fig7"} {
		var b strings.Builder
		if err := run([]string{name}, &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunQuickSimExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "table2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Expectation") {
		t.Errorf("table2 output missing expectation row:\n%s", b.String())
	}
}

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-csv", "fig6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "pool,share") {
		t.Errorf("CSV output = %q", b.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"nonsense"}, &b); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{}, &b); err == nil {
		t.Error("missing experiment should fail")
	}
}

func TestBuildAllNamesResolve(t *testing.T) {
	// Every advertised experiment must resolve (analytic ones complete;
	// simulation ones are exercised in quick mode elsewhere).
	for _, name := range experimentNames() {
		switch name {
		case "fig8", "table2", "diffablation", "strategies":
			continue // heavy: covered by TestRunQuickSimExperiment and package tests
		}
		if _, err := build(name, experiments.Quick()); err != nil {
			t.Errorf("build(%q): %v", name, err)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("paper harness end-to-end run is slow")
	}
	var b strings.Builder
	if err := run([]string{"-quick", "all"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
		"Table II", "Sec. VI", "Difficulty-rule ablation", "Strategy comparison",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}
