// Command ethselfish regenerates every table and figure of "Selfish Mining
// in Ethereum" (Niu & Feng, ICDCS 2019).
//
// Usage:
//
//	ethselfish [flags] <experiment>
//
// Experiments: table1, fig6, fig7, fig8, fig9, fig10, table2, secvi,
// diffablation, strategies, poolwars, all.
//
// Flags:
//
//	-quick        reduced simulation effort (2 runs x 20k blocks)
//	-runs N       simulation runs per data point (default 10, as the paper)
//	-blocks N     block events per run (default 100000, as the paper)
//	-seed N       base RNG seed (default 1)
//	-parallel N   worker goroutines for the experiment engine (default 0:
//	              one per CPU); results are identical at any setting
//	-csv          emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethselfish:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethselfish", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "reduced simulation effort")
		runs     = fs.Int("runs", experiments.DefaultRuns, "simulation runs per data point")
		blocks   = fs.Int("blocks", experiments.DefaultBlocks, "block events per run")
		seed     = fs.Uint64("seed", 1, "base RNG seed")
		parallel = fs.Int("parallel", 0, "experiment engine workers (0: one per CPU)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ethselfish [flags] <experiment>\n")
		fmt.Fprintf(fs.Output(), "experiments: %s\n\n", strings.Join(experimentNames(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d arguments", fs.NArg())
	}

	opts := experiments.Options{Runs: *runs, Blocks: *blocks, Seed: *seed}
	if *quick {
		opts = experiments.Quick()
		opts.Seed = *seed
	}
	opts.Parallelism = *parallel

	name := fs.Arg(0)
	if name == "all" {
		for _, exp := range experimentNames() {
			if err := emit(w, exp, opts, *csv); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return emit(w, name, opts, *csv)
}

func experimentNames() []string {
	return []string{
		"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "table2",
		"secvi", "diffablation", "strategies", "poolwars",
	}
}

func emit(w io.Writer, name string, opts experiments.Options, csv bool) error {
	tab, err := build(name, opts)
	if err != nil {
		return err
	}
	if csv {
		return tab.RenderCSV(w)
	}
	return tab.Render(w)
}

func build(name string, opts experiments.Options) (*table.Table, error) {
	switch name {
	case "table1":
		return experiments.Table1(), nil
	case "fig6":
		return experiments.Fig6(), nil
	case "fig7":
		return experiments.Fig7(0.3 /* alpha */, 0.5 /* gamma */, 8 /* maxLead */, opts)
	case "fig8":
		result, err := experiments.Fig8(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "fig9":
		result, err := experiments.Fig9(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "fig10":
		result, err := experiments.Fig10(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "table2":
		result, err := experiments.Table2(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "secvi":
		result, err := experiments.SecVI(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "diffablation":
		result, err := experiments.DiffAblation(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "strategies":
		result, err := experiments.Strategies(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "poolwars":
		result, err := experiments.PoolWars(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q (want one of %s)",
			name, strings.Join(experimentNames(), ", "))
	}
}
