// Command ethselfish regenerates every table and figure of "Selfish Mining
// in Ethereum" (Niu & Feng, ICDCS 2019), and drives the strategy-space
// engines that extend the paper (tournaments and best-response searches
// over registry strategy specs).
//
// Usage:
//
//	ethselfish [flags] <experiment>
//
// Experiments: table1, fig6, fig7, fig8, fig9, fig10, table2, secvi,
// diffablation, strategies, poolwars, tournament, bestresponse,
// profitability, precision, all.
//
// Flags:
//
//	-quick         reduced simulation effort (2 runs x 20k blocks);
//	               explicit -runs/-blocks still apply on top
//	-runs N        simulation runs per data point (default 10, as the paper)
//	-blocks N      block events per run (default 100000, as the paper)
//	-seed N        base RNG seed (default 1)
//	-parallel N    worker goroutines for the experiment engine (default 0:
//	               one per CPU); results are identical at any setting
//	-strategies S  comma-separated strategy specs (e.g.
//	               "algorithm1,stubborn:lead=1,trail-stubborn") for the
//	               strategies and tournament experiments (bestresponse
//	               searches its own fixed candidate grid)
//	-rule R        comma-separated difficulty rules (static, bitcoin,
//	               eip100) restricting the profitability experiment's rule
//	               axis (default: all three)
//	-fastforward   run simulations with the analytic fast-forward of
//	               uneventful stretches; results agree with the plain
//	               engine in distribution, not bit-for-bit, so journals
//	               written in one mode never resume in the other
//	-notables      keep every pool on the live Strategy interface path
//	               instead of the compiled decision tables; diagnostic
//	               only — results are bit-identical either way
//	-timeout D     overall deadline for the invocation (e.g. 30m); on
//	               expiry in-flight runs finish, then the sweep stops
//	-checkpoint F  journal completed (grid-point x run) rows to file F and
//	               resume from any rows already journaled there; rerunning
//	               the same command after an interrupt continues where it
//	               stopped and produces bit-identical output
//	-cache         serve content-addressed rows from an in-memory result
//	               cache for this invocation (an "all" sweep reuses points
//	               shared between experiments); hits are bit-identical to
//	               recomputation
//	-cachedir D    like -cache, but backed by an append-only journal in
//	               directory D, so a rerun — of the same experiment or any
//	               experiment sharing grid points — serves cached rows
//	               instead of simulating; a summary of hits and misses is
//	               printed to stderr on exit
//	-audit         enable the simulator's runtime invariant auditor
//	-audit-every N audit every Nth block event (default 1024; 1 checks
//	               every event). Only meaningful with -audit
//	-list          enumerate experiments and registered strategy specs
//	-csv           emit CSV instead of aligned text
//
// Interrupting with ^C stops dispatching new simulation runs and lets
// in-flight runs drain before exiting; a second ^C kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
	"github.com/ethselfish/ethselfish/internal/table"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt cancels ctx, restore default signal
	// handling so a second ^C kills the process instead of waiting for
	// the graceful drain.
	context.AfterFunc(ctx, stop)
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethselfish:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethselfish", flag.ContinueOnError)
	var (
		quick       = fs.Bool("quick", false, "reduced simulation effort")
		runs        = fs.Int("runs", experiments.DefaultRuns, "simulation runs per data point")
		blocks      = fs.Int("blocks", experiments.DefaultBlocks, "block events per run")
		seed        = fs.Uint64("seed", 1, "base RNG seed")
		parallel    = fs.Int("parallel", 0, "experiment engine workers (0: one per CPU)")
		strategies  = fs.String("strategies", "", "comma-separated strategy specs for strategies/tournament (not bestresponse)")
		fastforward = fs.Bool("fastforward", false, "fast-forward uneventful stretches (distribution-equivalent, different random stream)")
		notables    = fs.Bool("notables", false, "disable compiled decision tables (diagnostic; results are identical either way)")
		rule        = fs.String("rule", "", "comma-separated difficulty rules for profitability (static, bitcoin, eip100)")
		timeout     = fs.Duration("timeout", 0, "overall deadline (0: none); in-flight runs finish on expiry")
		checkpoint  = fs.String("checkpoint", "", "journal completed rows to this file and resume from it")
		cacheFlag   = fs.Bool("cache", false, "serve rows from an in-memory result cache for this invocation")
		cachedir    = fs.String("cachedir", "", "persistent result cache directory (implies -cache, survives reruns)")
		audit       = fs.Bool("audit", false, "enable the runtime invariant auditor")
		auditEvery  = fs.Int("audit-every", 1024, "audit every Nth block event (with -audit)")
		list        = fs.Bool("list", false, "list experiments and registered strategy specs")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ethselfish [flags] <experiment>\n")
		fmt.Fprintf(fs.Output(), "experiments: %s\n", strings.Join(experimentNames(), ", "))
		fmt.Fprintf(fs.Output(), "run `ethselfish -list` for the strategy-spec registry\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		if fs.NArg() != 0 {
			return fmt.Errorf("-list takes no experiment argument")
		}
		return printList(w)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d arguments", fs.NArg())
	}

	opts := experiments.Options{Runs: *runs, Blocks: *blocks, Seed: *seed}
	if *quick {
		opts = experiments.Quick()
		opts.Seed = *seed
		// Explicitly set -runs/-blocks still apply on top of the quick
		// defaults, so effort can be dialed below (or above) quick.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "runs":
				opts.Runs = *runs
			case "blocks":
				opts.Blocks = *blocks
			}
		})
	}
	opts.Parallelism = *parallel
	opts.FastForward = *fastforward
	opts.NoDecisionTables = *notables
	opts.Audit = sim.AuditConfig{Enabled: *audit, SampleEvery: *auditEvery}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts.Ctx = ctx
	if *checkpoint != "" {
		ck, err := experiments.OpenCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		defer ck.Close()
		opts.Checkpoint = ck
	}
	if *cachedir != "" {
		cache, err := resultcache.Open(*cachedir, 0)
		if err != nil {
			return err
		}
		opts.Cache = cache
	} else if *cacheFlag {
		opts.Cache = resultcache.NewMemory(0)
	}
	if cache := opts.Cache; cache != nil {
		defer func() {
			s := cache.Stats()
			fmt.Fprintf(os.Stderr, "ethselfish: cache: %d hits (%d memory, %d disk), %d misses, %d stored\n",
				s.Hits(), s.MemoryHits, s.DiskHits, s.Misses, s.Stores)
			cache.Close()
		}()
	}

	specs, err := parseSpecList(*strategies)
	if err != nil {
		return err
	}
	rules, err := parseRuleList(*rule)
	if err != nil {
		return err
	}

	name := fs.Arg(0)
	if len(rules) > 0 && name != "profitability" && name != "all" {
		return fmt.Errorf("-rule only applies to the profitability experiment")
	}
	// The tournament needs a field of at least two entrants; reject a
	// lone spec before any simulation runs (an "all" sweep would
	// otherwise burn through every earlier experiment first). And
	// bestresponse searches its own fixed candidate grid — reject
	// -strategies there rather than silently ignoring it.
	if len(specs) == 1 && (name == "tournament" || name == "all") {
		return fmt.Errorf("-strategies needs at least 2 specs for the tournament, got 1")
	}
	if len(specs) > 0 && name == "bestresponse" {
		return fmt.Errorf("bestresponse searches the whole stubborn family; -strategies is not supported (use strategies or tournament)")
	}
	// An interrupted sweep is resumable when journaled; say so instead of
	// leaving a bare "context canceled".
	finish := func(err error) error {
		if err != nil && *checkpoint != "" &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return fmt.Errorf("%w (completed rows are journaled in %s; rerun the same command to resume)",
				err, *checkpoint)
		}
		return err
	}
	if name == "all" {
		for _, exp := range experimentNames() {
			if err := emit(w, exp, opts, specs, rules, *csv); err != nil {
				return finish(err)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return finish(emit(w, name, opts, specs, rules, *csv))
}

// parseRuleList parses a comma-separated list of difficulty rule names,
// failing before any simulation starts.
func parseRuleList(s string) ([]difficulty.Rule, error) {
	if s == "" {
		return nil, nil
	}
	var rules []difficulty.Rule
	for _, frag := range strings.Split(s, ",") {
		rule, err := difficulty.ParseRule(strings.TrimSpace(frag))
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// parseSpecList parses a comma-separated list of strategy specs, validating
// each against the registry so bad specs fail before any simulation starts.
// A spec may itself contain commas between its parameters
// ("stubborn:lead=1,trail=2"), so a fragment of the bare form key=value
// continues the previous spec rather than starting a new one.
func parseSpecList(s string) ([]sim.StrategySpec, error) {
	if s == "" {
		return nil, nil
	}
	var raws []string
	for _, frag := range strings.Split(s, ",") {
		head, _, isAssign := strings.Cut(frag, "=")
		if isAssign && !strings.Contains(head, ":") && !specRegistered(head) && len(raws) > 0 {
			raws[len(raws)-1] += "," + frag
			continue
		}
		raws = append(raws, frag)
	}
	specs := make([]sim.StrategySpec, 0, len(raws))
	for _, raw := range raws {
		spec, err := sim.ParseStrategySpec(raw)
		if err != nil {
			return nil, err
		}
		if _, err := sim.NewStrategy(spec); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// specRegistered reports whether name is a registered strategy name.
func specRegistered(name string) bool {
	for _, def := range sim.StrategyDefs() {
		if def.Name == name {
			return true
		}
	}
	return false
}

// printList enumerates the experiments and the strategy registry — the
// parameter ranges come from the registry itself, not a hand-maintained
// usage string.
func printList(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiments:"); err != nil {
		return err
	}
	for _, name := range experimentNames() {
		if _, err := fmt.Fprintf(w, "  %s\n", name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "\nstrategy specs (for -strategies; defaults in parentheses):"); err != nil {
		return err
	}
	for _, def := range sim.StrategyDefs() {
		if _, err := fmt.Fprintf(w, "  %-40s %s\n", def.Usage(), def.Doc); err != nil {
			return err
		}
		for _, p := range def.Params {
			if _, err := fmt.Fprintf(w, "      %s=%d..%d (%d)  %s\n", p.Key, p.Min, p.Max, p.Default, p.Doc); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "\nlegacy aliases: trail-stubborn (= stubborn:lead=1), eager-publish-<k> (= eager-publish:lead=<k>)")
	return err
}

func experimentNames() []string {
	return []string{
		"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "table2",
		"secvi", "diffablation", "strategies", "poolwars", "tournament",
		"bestresponse", "profitability", "precision",
	}
}

func emit(w io.Writer, name string, opts experiments.Options, specs []sim.StrategySpec, rules []difficulty.Rule, csv bool) error {
	tab, err := build(name, opts, specs, rules)
	if err != nil {
		return err
	}
	if csv {
		return tab.RenderCSV(w)
	}
	return tab.Render(w)
}

func build(name string, opts experiments.Options, specs []sim.StrategySpec, rules []difficulty.Rule) (*table.Table, error) {
	switch name {
	case "table1":
		return experiments.Table1(), nil
	case "fig6":
		return experiments.Fig6(), nil
	case "fig7":
		return experiments.Fig7(0.3 /* alpha */, 0.5 /* gamma */, 8 /* maxLead */, opts)
	case "fig8":
		result, err := experiments.Fig8(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "fig9":
		result, err := experiments.Fig9(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "fig10":
		result, err := experiments.Fig10(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "table2":
		result, err := experiments.Table2(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "secvi":
		result, err := experiments.SecVI(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "diffablation":
		result, err := experiments.DiffAblation(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "strategies":
		result, err := experiments.Strategies(opts, specs...)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "poolwars":
		result, err := experiments.PoolWars(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "tournament":
		result, err := experiments.Tournament(opts, specs...)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "bestresponse":
		result, err := experiments.BestResponse(opts)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "profitability":
		result, err := experiments.Profitability(opts, rules...)
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	case "precision":
		// The variance-reduction study: adaptive runs-to-target-CI per
		// estimator. It honors -fastforward through the options like every
		// other sweep; the remaining knobs keep their defaults.
		result, err := experiments.Precision(opts, experiments.PrecisionConfig{
			FastForward: opts.FastForward,
		})
		if err != nil {
			return nil, err
		}
		return result.Table(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q (want one of %s)",
			name, strings.Join(experimentNames(), ", "))
	}
}
