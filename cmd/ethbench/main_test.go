package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sim-100k-blocks", "fig8-quick", "runmany-10x20k"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out bytes.Buffer
	// table2-quick is the cheapest simulation-backed benchmark.
	if err := run([]string{"-filter", "table2-quick", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Name != "table2-quick" || r.Iterations <= 0 || r.NsPerOp <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	if r.Parallelism != 2 {
		t.Errorf("parallelism = %d, want 2", r.Parallelism)
	}
}

func TestUnknownFilterFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-filter", "no-such-bench"}, &out); err == nil {
		t.Error("unknown filter should fail")
	}
}

func TestRejectsPositionalArguments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"extra"}, &out); err == nil {
		t.Error("positional arguments should fail")
	}
}
