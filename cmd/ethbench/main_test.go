package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sim-100k-blocks", "fig8-quick", "runmany-10x20k"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestBenchGateFiltersMatchWorkloads(t *testing.T) {
	// The Makefile's bench-gate target records and compares one substring
	// filter at a time; a filter that stops matching any workload would
	// silently gate nothing. Pin every BENCH_GATE_FILTERS entry against
	// the live workload registry (-list), the same names the gate runs.
	raw, err := os.ReadFile(filepath.Join("..", "..", "Makefile"))
	if err != nil {
		t.Fatal(err)
	}
	var filters []string
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "BENCH_GATE_FILTERS"); ok {
			_, value, found := strings.Cut(rest, "=")
			if !found {
				t.Fatalf("unparseable BENCH_GATE_FILTERS line: %q", line)
			}
			filters = strings.Fields(value)
		}
	}
	if len(filters) == 0 {
		t.Fatal("no BENCH_GATE_FILTERS assignment found in Makefile")
	}
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(out.String())
	for _, filter := range filters {
		matched := false
		for _, name := range names {
			if strings.Contains(name, filter) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("bench-gate filter %q matches no workload in -list:\n%s", filter, out.String())
		}
	}
}

func TestEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out bytes.Buffer
	// table2-quick is the cheapest simulation-backed benchmark.
	if err := run([]string{"-filter", "table2-quick", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Name != "table2-quick" || r.Iterations <= 0 || r.NsPerOp <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	if r.Parallelism != 2 {
		t.Errorf("parallelism = %d, want 2", r.Parallelism)
	}
}

func TestUnknownFilterFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-filter", "no-such-bench"}, &out); err == nil {
		t.Error("unknown filter should fail")
	}
}

func TestRejectsPositionalArguments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"extra"}, &out); err == nil {
		t.Error("positional arguments should fail")
	}
}

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	raw, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaselinePassesWithinTolerance(t *testing.T) {
	results := []Result{{Name: "x", NsPerOp: 110, AllocsPerOp: 10}}
	base := []Result{{Name: "x", NsPerOp: 100, AllocsPerOp: 10}}
	var out bytes.Buffer
	if err := compareBaseline(&out, writeBaseline(t, base), results); err != nil {
		t.Fatalf("10%% slower should pass: %v", err)
	}
	if !strings.Contains(out.String(), "x") {
		t.Errorf("delta table missing benchmark row:\n%s", out.String())
	}
}

func TestCompareBaselineFailsOnNsRegression(t *testing.T) {
	results := []Result{{Name: "x", NsPerOp: 130, AllocsPerOp: 10}}
	base := []Result{{Name: "x", NsPerOp: 100, AllocsPerOp: 10}}
	var out bytes.Buffer
	err := compareBaseline(&out, writeBaseline(t, base), results)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("30%% slower should fail on ns/op, got %v", err)
	}
}

func TestCompareBaselineFailsOnBytesRegression(t *testing.T) {
	results := []Result{{Name: "x", NsPerOp: 100, BytesPerOp: 13 << 20, AllocsPerOp: 10}}
	base := []Result{{Name: "x", NsPerOp: 100, BytesPerOp: 10 << 20, AllocsPerOp: 10}}
	var out bytes.Buffer
	err := compareBaseline(&out, writeBaseline(t, base), results)
	if err == nil || !strings.Contains(err.Error(), "bytes/op") {
		t.Fatalf("30%% more bytes should fail on bytes/op, got %v", err)
	}
}

func TestCompareBaselineToleratesZeroBytesBaseline(t *testing.T) {
	// Histories recorded before the bytes gate carry zero BytesPerOp;
	// comparing against them must not fabricate a regression.
	results := []Result{{Name: "x", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 10}}
	base := []Result{{Name: "x", NsPerOp: 100, AllocsPerOp: 10}}
	var out bytes.Buffer
	if err := compareBaseline(&out, writeBaseline(t, base), results); err != nil {
		t.Fatalf("zero-bytes baseline should pass: %v", err)
	}
}

func TestCompareBaselineFailsOnAllocRegression(t *testing.T) {
	results := []Result{{Name: "x", NsPerOp: 100, AllocsPerOp: 13}}
	base := []Result{{Name: "x", NsPerOp: 100, AllocsPerOp: 10}}
	var out bytes.Buffer
	err := compareBaseline(&out, writeBaseline(t, base), results)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("30%% more allocs should fail, got %v", err)
	}
}

func TestCompareBaselineToleratesNewBenchmarks(t *testing.T) {
	// A benchmark absent from the baseline is reported but never a
	// regression, so adding benchmarks cannot break the compare gate.
	results := []Result{{Name: "brand-new", NsPerOp: 100, AllocsPerOp: 5}}
	var out bytes.Buffer
	if err := compareBaseline(&out, writeBaseline(t, nil), results); err != nil {
		t.Fatalf("new benchmark should pass: %v", err)
	}
	if !strings.Contains(out.String(), "brand-new") {
		t.Errorf("new benchmark missing from table:\n%s", out.String())
	}
}

func TestCompareBaselineMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := compareBaseline(&out, "/no/such/file.json", nil); err == nil {
		t.Error("missing baseline file should fail")
	}
}
