// Command ethbench runs the repository's performance-tracking workloads
// and emits machine-readable results, one JSON object per benchmark, as a
// single JSON array on stdout (the BENCH_*.json trajectory format).
//
// Usage:
//
//	ethbench [flags]
//
// Flags:
//
//	-filter S        run only benchmarks whose name contains S
//	-parallel N      experiment engine workers (default 0: one per CPU)
//	-list            print benchmark names and exit
//	-baseline FILE   compare against a saved JSON run instead of printing
//	                 JSON: print per-benchmark deltas (ns/op, bytes/op,
//	                 allocs/op) and exit non-zero on a >20% regression in
//	                 any of the three
//	-record FILE     append this run as a dated entry to a JSON history
//	                 file (the BENCH_HISTORY.json trajectory), in addition
//	                 to the normal stdout output
//	-cpuprofile FILE write a CPU profile covering the benchmark runs
//	-memprofile FILE write a heap profile taken after the benchmark runs
//
// Each result records iterations, ns/op, bytes/op and allocs/op as measured
// by testing.Benchmark, plus the parallelism and GOMAXPROCS in force, so
// trajectories from different machines stay comparable. The precision-*
// benchmarks report time-to-target-precision: one op is an adaptive study
// that simulates until the pool-revenue confidence interval closes under
// its target half-width, so their ns/op is directly the wall-clock cost of
// a fixed statistical precision under each estimator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"github.com/ethselfish/ethselfish/internal/difficulty"
	"github.com/ethselfish/ethselfish/internal/experiments"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/resultcache"
	"github.com/ethselfish/ethselfish/internal/sim"
)

// Result is one benchmark measurement in the emitted JSON array.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Parallelism int     `json:"parallelism"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
}

// benchmark couples a name to a workload parameterized by the engine's
// parallelism.
type benchmark struct {
	name string
	run  func(b *testing.B, parallel int)
}

func benchmarks() []benchmark {
	return []benchmark{
		{name: "sim-100k-blocks", run: func(b *testing.B, parallel int) {
			// The headline tracking workload runs the production
			// configuration: streaming settlement, so resident memory is
			// O(uncle window) and bytes/op is the Result plus the
			// window-bounded engine state, not a 100k-block tree.
			pop, err := mining.TwoAgent(0.35)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
					Streaming:  true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-1m-blocks", run: func(b *testing.B, parallel int) {
			// The long-horizon workload: a million blocks through one
			// reused Runner under streaming settlement. Heap stays flat
			// at O(uncle window); the bench-smoke heap profile artifact
			// is taken from this workload.
			pop, err := mining.TwoAgent(0.35)
			if err != nil {
				b.Fatal(err)
			}
			rn := sim.NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rn.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     1000000,
					Seed:       uint64(i),
					Streaming:  true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-1000-miners", run: func(b *testing.B, parallel int) {
			// The paper's actual Sec. V population (1000 equal
			// miners); alias-table sampling keeps it within a small
			// factor of the two-agent run above.
			pop, err := mining.Equal(1000, 350)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-2pools", run: func(b *testing.B, parallel int) {
			// Two Algorithm-1 pools racing each other: the K-pool
			// engine's tracking workload. Per-event cost is O(K) on
			// top of the O(1) population sampling, so it must stay
			// within a small factor of the single-pool benchmarks.
			pop, err := mining.MultiAgent(0.25, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-2pools-stubborn", run: func(b *testing.B, parallel int) {
			// Two parametric pools from the registry racing each
			// other: the strategy-space engine's tracking workload.
			// Must stay allocation-free in steady state and within a
			// small factor of the Algorithm-1 2-pool bench.
			pop, err := mining.MultiAgent(0.25, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			strategies, err := sim.NewStrategies([]sim.StrategySpec{
				sim.MustStrategySpec("stubborn:fork=1,lead=1"),
				sim.MustStrategySpec("stubborn:trail=2"),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
					Strategies: strategies,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-2pools-table", run: func(b *testing.B, parallel int) {
			// The decision-table showcase: two deep-racing parametric
			// pools whose reactions all resolve inside the compiled table
			// window. Tables are warmed before timing, as the experiment
			// engine does before fanning a sweep out.
			pop, err := mining.MultiAgent(0.25, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			strategies, err := sim.NewStrategies([]sim.StrategySpec{
				sim.MustStrategySpec("eager-publish:lead=3"),
				sim.MustStrategySpec("stubborn:lead=1,trail=2"),
			})
			if err != nil {
				b.Fatal(err)
			}
			sim.WarmDecisionTables(strategies)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
					Strategies: strategies,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-eip100", run: func(b *testing.B, parallel int) {
			// The continuous-time engine with the difficulty feedback
			// loop closed: exponential inter-arrival sampling, per-block
			// timestamps, and per-settled-block EIP100 stepping. Must
			// stay allocation-free in steady state and within a small
			// factor of the timeless 100k bench.
			pop, err := mining.TwoAgent(0.35)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
					Time: sim.TimeConfig{
						Enabled:    true,
						Difficulty: difficulty.Params{Rule: difficulty.EIP100},
					},
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-alpha05", run: func(b *testing.B, parallel int) {
			// The plain half of the fast-forward speedup pair: a small
			// attacker from the low end of the Fig. 8 sweep, where the race
			// spends nearly all of its events at the empty-branch origin —
			// exactly the regime the fast-forward collapses. The reused
			// Runner keeps both halves of the pair at steady state.
			pop, err := mining.TwoAgent(0.05)
			if err != nil {
				b.Fatal(err)
			}
			rn := sim.NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rn.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-fastforward", run: func(b *testing.B, parallel int) {
			// The same workload with the analytic fast-forward engaged:
			// uneventful honest stretches collapse to one geometric draw
			// plus a bulk append. Gated against sim-100k-blocks-alpha05
			// in the CI baseline to keep the speedup honest.
			pop, err := mining.TwoAgent(0.05)
			if err != nil {
				b.Fatal(err)
			}
			rn := sim.NewRunner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rn.Run(sim.Config{
					Population:  pop,
					Gamma:       0.5,
					Blocks:      100000,
					Seed:        uint64(i),
					FastForward: true,
					Streaming:   true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "sim-100k-blocks-audit-sampled", run: func(b *testing.B, parallel int) {
			// The invariant auditor at its CI-friendly sampling rate.
			// The fork-child rescan and conservation settle make audited
			// events expensive, so sampling must amortize them to a
			// small overhead on top of the plain 100k bench (the audit
			// itself allocates; only the unaudited path is gated
			// allocation-free).
			pop, err := mining.TwoAgent(0.35)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Population: pop,
					Gamma:      0.5,
					Blocks:     100000,
					Seed:       uint64(i),
					Audit:      sim.AuditConfig{Enabled: true, SampleEvery: 1024},
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "runmany-10x20k", run: func(b *testing.B, parallel int) {
			pop, err := mining.TwoAgent(0.35)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunMany(sim.Config{
					Population:  pop,
					Gamma:       0.5,
					Blocks:      20000,
					Seed:        uint64(i),
					Parallelism: parallel,
				}, 10); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "fig8-quick", run: func(b *testing.B, parallel int) {
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig8(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "table2-quick", run: func(b *testing.B, parallel int) {
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table2(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "strategies-quick", run: func(b *testing.B, parallel int) {
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Strategies(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "poolwars-quick", run: func(b *testing.B, parallel int) {
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.PoolWars(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "profitability-quick", run: func(b *testing.B, parallel int) {
			// The (rule x gamma x alpha) profitability grid on the
			// engine-integrated difficulty loop.
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Profitability(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "tournament-quick", run: func(b *testing.B, parallel int) {
			// The round-robin engine over registry specs; part of the
			// -baseline regression gate alongside the 2-pool sims.
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Tournament(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "precision-plain-quick", run: precisionBench(experiments.EstimatorPlain)},
		{name: "precision-cv-quick", run: precisionBench(experiments.EstimatorControlVariate)},
		{name: "precision-antithetic-quick", run: precisionBench(experiments.EstimatorAntithetic)},
		{name: "poolwars-cache-cold", run: func(b *testing.B, parallel int) {
			// Cold path: a fresh cache every op, so ns/op carries the full
			// address/miss/store overhead on top of poolwars-quick — the
			// pair bounds what the cache costs when it never hits.
			opts := experiments.Quick()
			opts.Parallelism = parallel
			for i := 0; i < b.N; i++ {
				opts.Cache = resultcache.NewMemory(0)
				if _, err := experiments.PoolWars(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "poolwars-cache-warm", run: func(b *testing.B, parallel int) {
			// Warm path: one prewarmed cache serves every op, so ns/op is
			// the cost of a fully cached sweep — the speedup over
			// poolwars-quick is the cache's headline.
			opts := experiments.Quick()
			opts.Parallelism = parallel
			opts.Cache = resultcache.NewMemory(0)
			if _, err := experiments.PoolWars(opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.PoolWars(opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// precisionBench builds a time-to-target-precision workload: one op runs
// the adaptive precision study at a single alpha under one estimator until
// its confidence interval closes under the target half-width, so ns/op is
// the variance-adjusted cost of a fixed precision — lower for estimators
// with a real variance reduction.
func precisionBench(est experiments.Estimator) func(b *testing.B, parallel int) {
	return func(b *testing.B, parallel int) {
		opts := experiments.Options{Blocks: experiments.QuickBlocks, Parallelism: parallel}
		pc := experiments.PrecisionConfig{
			Alphas:       []float64{0.3},
			Estimators:   []experiments.Estimator{est},
			TargetRadius: 0.0015,
			MaxRuns:      64,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Precision(opts, pc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethbench", flag.ContinueOnError)
	var (
		filter     = fs.String("filter", "", "run only benchmarks whose name contains this substring")
		parallel   = fs.Int("parallel", 0, "experiment engine workers (0: one per CPU)")
		list       = fs.Bool("list", false, "print benchmark names and exit")
		baseline   = fs.String("baseline", "", "compare against this saved JSON run and fail on >20% regression")
		record     = fs.String("record", "", "append this run as a dated entry to this JSON history file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
		memprofile = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ethbench: creating heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ethbench: writing heap profile:", err)
			}
		}()
	}

	var results []Result
	for _, bench := range benchmarks() {
		if !strings.Contains(bench.name, *filter) {
			continue
		}
		if *list {
			if _, err := fmt.Fprintln(w, bench.name); err != nil {
				return err
			}
			continue
		}
		bench := bench
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bench.run(b, *parallel)
		})
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed", bench.name)
		}
		// A zero -parallel flag means one worker per CPU; record the
		// resolved count so history entries from different machines (and
		// flag spellings of the same setup) stay comparable.
		parallelism := *parallel
		if parallelism == 0 {
			parallelism = runtime.GOMAXPROCS(0)
		}
		results = append(results, Result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Parallelism: parallelism,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		})
	}
	if *list {
		return nil
	}
	if results == nil {
		return fmt.Errorf("no benchmark matches filter %q", *filter)
	}
	if *record != "" {
		if err := appendHistory(*record, results); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return compareBaseline(w, *baseline, results)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// historyEntry is one dated run in the benchmark history file: the full
// result set plus enough environment to compare rows honestly.
type historyEntry struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Results   []Result `json:"results"`
}

// appendHistory appends this run as a dated entry to the JSON history at
// path (an array of entries, created on first use). The file is rewritten
// whole — history files are small and the rewrite keeps them valid JSON
// rather than a fragile append format.
func appendHistory(path string, results []Result) error {
	var history []historyEntry
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &history); err != nil {
			return fmt.Errorf("parsing history %s: %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("reading history: %w", err)
	}
	history = append(history, historyEntry{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Results:   results,
	})
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding history: %w", err)
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// regressionLimit is the tolerated relative increase in ns/op, bytes/op, or
// allocs/op before the compare mode fails.
const regressionLimit = 0.20

// compareBaseline prints per-benchmark deltas against a saved JSON run and
// returns an error (non-zero exit) if any shared benchmark regressed by
// more than regressionLimit in ns/op, bytes/op, or allocs/op. Gating memory
// alongside time keeps the streaming-settlement footprint honest: a change
// that quietly re-grows per-op allocations fails here even when ns/op holds.
func compareBaseline(w io.Writer, path string, results []Result) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseByName := make(map[string]Result, len(base))
	for _, r := range base {
		baseByName[r.Name] = r
	}

	var regressions []string
	fmt.Fprintf(w, "%-32s %14s %14s %8s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "ns/op(base)", "ns/op(new)", "delta", "bytes(b)", "bytes(n)", "delta", "allocs(b)", "allocs(n)", "delta")
	for _, r := range results {
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-32s %14s %14.0f %8s %12s %12d %8s %10s %10d %8s\n",
				r.Name, "-", r.NsPerOp, "new", "-", r.BytesPerOp, "new", "-", r.AllocsPerOp, "new")
			continue
		}
		nsDelta := relativeDelta(b.NsPerOp, r.NsPerOp)
		bytesDelta := relativeDelta(float64(b.BytesPerOp), float64(r.BytesPerOp))
		allocDelta := relativeDelta(float64(b.AllocsPerOp), float64(r.AllocsPerOp))
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+7.1f%% %12d %12d %+7.1f%% %10d %10d %+7.1f%%\n",
			r.Name, b.NsPerOp, r.NsPerOp, 100*nsDelta,
			b.BytesPerOp, r.BytesPerOp, 100*bytesDelta,
			b.AllocsPerOp, r.AllocsPerOp, 100*allocDelta)
		if nsDelta > regressionLimit {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %+.1f%%", r.Name, 100*nsDelta))
		}
		if bytesDelta > regressionLimit {
			regressions = append(regressions,
				fmt.Sprintf("%s: bytes/op %+.1f%%", r.Name, 100*bytesDelta))
		}
		if allocDelta > regressionLimit {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %+.1f%%", r.Name, 100*allocDelta))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regressions over %.0f%%: %s",
			100*regressionLimit, strings.Join(regressions, "; "))
	}
	return nil
}

// relativeDelta returns (new-base)/base, treating a zero base as no change
// unless the new value is positive (then it is an unbounded regression only
// if the metric grew, reported as +100%).
func relativeDelta(base, new float64) float64 {
	if base == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - base) / base
}
