// Command ethsim runs the event-driven selfish-mining simulator for one
// configuration and prints the settled revenue summary next to the analytic
// prediction.
//
// Example:
//
//	ethsim -alpha 0.35 -gamma 0.5 -blocks 100000 -runs 10
//	ethsim -alpha 0.3 -gamma 0.5 -ku 0.5 -maxdepth 0 -miners 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ethselfish/ethselfish"
	"github.com/ethselfish/ethselfish/internal/mining"
	"github.com/ethselfish/ethselfish/internal/rewards"
	"github.com/ethselfish/ethselfish/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ethsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ethsim", flag.ContinueOnError)
	var (
		alpha      = fs.Float64("alpha", 0.3, "selfish pool hash-power share (0, 0.5)")
		gamma      = fs.Float64("gamma", 0.5, "honest tie-break fraction toward the pool [0, 1]")
		blocks     = fs.Int("blocks", 100000, "block events per run")
		runs       = fs.Int("runs", 10, "independent runs")
		seed       = fs.Uint64("seed", 1, "RNG seed")
		ku         = fs.Float64("ku", -1, "flat uncle reward (fraction of Ks); negative selects Ethereum's Ku(.)")
		maxDepth   = fs.Int("maxdepth", 6, "uncle reference depth limit; 0 means unlimited")
		uncleLimit = fs.Int("uncles", 0, "max uncles per block; 0 means unlimited (Ethereum: 2)")
		miners     = fs.Int("miners", 0, "simulate n equal miners instead of two aggregate agents")
		dump       = fs.String("dump", "", "write one run's full block tree as JSON to this file")
		strategy   = fs.String("strategy", "algorithm1", "pool strategy spec: algorithm1, honest, stubborn:lead=L,fork=F,trail=T, eager-publish:lead=k (see `ethselfish -list`)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule := ethselfish.EthereumSchedule()
	if *ku >= 0 {
		depth := *maxDepth
		if depth == 0 {
			depth = ethselfish.NoDepthLimit
		}
		var err error
		schedule, err = ethselfish.ConstantSchedule(*ku, depth)
		if err != nil {
			return err
		}
	}

	opts := []ethselfish.Option{
		ethselfish.WithSchedule(schedule),
		ethselfish.WithSeed(*seed),
		ethselfish.WithRuns(*runs),
		ethselfish.WithUncleLimit(*uncleLimit),
		ethselfish.WithStrategy(*strategy),
	}
	if *miners > 0 {
		opts = append(opts, ethselfish.WithMiners(*miners))
	}
	result, err := ethselfish.Simulate(*alpha, *gamma, *blocks, opts...)
	if err != nil {
		return err
	}
	if *dump != "" {
		if err := dumpTrace(*dump, *alpha, *gamma, *blocks, *seed, *uncleLimit, *ku, *maxDepth); err != nil {
			return fmt.Errorf("dumping trace: %w", err)
		}
		fmt.Fprintf(w, "trace written to %s\n", *dump)
	}
	analysis, err := ethselfish.Analyze(result.Alpha, *gamma, ethselfish.WithSchedule(schedule))
	if err != nil {
		return err
	}
	rev := analysis.Revenue()

	fmt.Fprintf(w, "selfish mining simulation: alpha=%.4f gamma=%.2f strategy=%s, %d runs x %d blocks\n",
		result.Alpha, *gamma, *strategy, result.Runs, result.BlocksPerRun)
	fmt.Fprintf(w, "settled blocks: %d regular, %d uncle, %d stale\n",
		result.RegularBlocks, result.UncleBlocks, result.StaleBlocks)
	fmt.Fprintf(w, "%-28s %10s %10s\n", "", "simulated", "analytic")
	fmt.Fprintf(w, "%-28s %10.4f %10.4f\n", "pool revenue (scenario 1)", result.PoolRevenue, rev.Pool(ethselfish.Scenario1))
	fmt.Fprintf(w, "%-28s %10.4f %10.4f\n", "honest revenue (scenario 1)", result.HonestRevenue, rev.Honest(ethselfish.Scenario1))
	fmt.Fprintf(w, "%-28s %10.4f %10.4f\n", "pool revenue (scenario 2)", result.PoolRevenueScenario2, rev.Pool(ethselfish.Scenario2))
	fmt.Fprintf(w, "%-28s %10.4f %10.4f\n", "honest revenue (scenario 2)", result.HonestRevenueScenario2, rev.Honest(ethselfish.Scenario2))
	fmt.Fprintf(w, "pool revenue std err: %.5f\n", result.PoolRevenueStdErr)
	fmt.Fprintf(w, "honest mining baseline: %.4f\n", result.Alpha)

	fmt.Fprintf(w, "honest uncle distances (1..6):")
	analytic := rev.UncleDistances(6)
	for d, p := range result.UncleDistances {
		fmt.Fprintf(w, " %d:%.3f(%.3f)", d+1, p, analytic[d])
	}
	fmt.Fprintln(w)
	return nil
}

// dumpTrace re-runs the first run of the configuration and writes its block
// tree as JSON.
func dumpTrace(path string, alpha, gamma float64, blocks int, seed uint64, uncleLimit int, ku float64, maxDepth int) error {
	pop, err := mining.TwoAgent(alpha)
	if err != nil {
		return err
	}
	schedule := rewards.Ethereum()
	if ku >= 0 {
		depth := maxDepth
		if depth == 0 {
			depth = rewards.NoDepthLimit
		}
		schedule, err = rewards.Constant(ku, depth)
		if err != nil {
			return err
		}
	}
	_, tree, err := sim.RunTrace(sim.Config{
		Population:        pop,
		Gamma:             gamma,
		Schedule:          schedule,
		Blocks:            blocks,
		Seed:              seed*0x9E3779B97F4A7C15 + 0, // first RunMany seed
		MaxUnclesPerBlock: uncleLimit,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tree.Encode(f); err != nil {
		return err
	}
	return f.Close()
}
