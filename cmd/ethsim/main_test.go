package main

import (
	"os"
	"strings"
	"testing"

	"github.com/ethselfish/ethselfish/internal/chain"
)

func TestRunDefaultsQuick(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alpha", "0.3", "-blocks", "20000", "-runs", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pool revenue (scenario 1)", "honest uncle distances", "settled blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFlatSchedule(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alpha", "0.2", "-ku", "0.5", "-maxdepth", "0",
		"-blocks", "10000", "-runs", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alpha", "0.7", "-blocks", "100", "-runs", "1"}, &b); err == nil {
		t.Error("alpha=0.7 should fail")
	}
	if err := run([]string{"-ku", "-0.5", "-bogus"}, &b); err == nil {
		t.Error("bogus flag should fail")
	}
}

func TestRunDumpTrace(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.json"
	var b strings.Builder
	err := run([]string{"-alpha", "0.3", "-blocks", "2000", "-runs", "1", "-dump", path}, &b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tree, err := chain.Decode(f)
	if err != nil {
		t.Fatalf("decoding dumped trace: %v", err)
	}
	if tree.Len() < 1000 {
		t.Errorf("trace has only %d blocks", tree.Len())
	}
}

func TestRunStrategyFlag(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alpha", "0.3", "-blocks", "5000", "-runs", "1",
		"-strategy", "trail-stubborn"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "strategy=trail-stubborn") {
		t.Errorf("output missing strategy name:\n%s", b.String())
	}
	if err := run([]string{"-strategy", "bogus", "-blocks", "100", "-runs", "1"}, &b); err == nil {
		t.Error("bogus strategy should fail")
	}
}
