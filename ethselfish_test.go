package ethselfish

import (
	"errors"
	"math"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	a, err := Analyze(0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rev := a.Revenue()
	if rev.Pool(Scenario1) <= 0.3 {
		t.Errorf("pool revenue %v should beat alpha=0.3 (threshold 0.054)", rev.Pool(Scenario1))
	}
	if !a.Profitable(Scenario1) {
		t.Error("alpha=0.3 should be profitable in scenario 1")
	}
	if a.Profitable(Scenario2) != (rev.Pool(Scenario2) > 0.3) {
		t.Error("Profitable disagrees with Revenue")
	}
	if got := rev.Pool(Scenario1) + rev.Honest(Scenario1); math.Abs(got-rev.Total(Scenario1)) > 1e-12 {
		t.Error("pool + honest != total")
	}
	if share := rev.PoolShare(); share <= 0 || share >= 1 {
		t.Errorf("pool share %v out of (0,1)", share)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(0.6, 0.5); err == nil {
		t.Error("alpha=0.6 should fail")
	}
	if _, err := Analyze(0.3, 2); err == nil {
		t.Error("gamma=2 should fail")
	}
}

func TestSchedules(t *testing.T) {
	eth := EthereumSchedule()
	if got := eth.UncleReward(1); got != 7.0/8 {
		t.Errorf("Ethereum Ku(1) = %v, want 7/8", got)
	}
	if got := eth.NephewReward(3); got != 1.0/32 {
		t.Errorf("Ethereum Kn(3) = %v, want 1/32", got)
	}
	flat, err := ConstantSchedule(0.5, NoDepthLimit)
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.UncleReward(100); got != 0.5 {
		t.Errorf("flat Ku(100) = %v, want 0.5", got)
	}
	if _, err := ConstantSchedule(-1, 6); err == nil {
		t.Error("negative Ku should fail")
	}
	btc := BitcoinSchedule()
	if btc.UncleReward(1) != 0 || btc.NephewReward(1) != 0 {
		t.Error("Bitcoin schedule should pay nothing")
	}
}

func TestProfitThresholdAnchors(t *testing.T) {
	got, err := ProfitThreshold(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.054) > 0.005 {
		t.Errorf("threshold = %v, want ~0.054", got)
	}
	got, err = ProfitThreshold(0.5, WithScenario(Scenario2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.270) > 0.005 {
		t.Errorf("scenario-2 threshold = %v, want ~0.270", got)
	}
	flat, err := ConstantSchedule(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ProfitThreshold(0.5, WithSchedule(flat))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.163) > 0.005 {
		t.Errorf("flat-Ku threshold = %v, want ~0.163", got)
	}
}

func TestBitcoinThreshold(t *testing.T) {
	got, err := BitcoinThreshold(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Bitcoin threshold = %v, want 0.25", got)
	}
}

func TestSimulateMatchesAnalyze(t *testing.T) {
	const (
		alpha = 0.35
		gamma = 0.5
	)
	simResult, err := Simulate(alpha, gamma, 100000, WithSeed(7), WithRuns(3))
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := Analyze(alpha, gamma)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.Revenue().Pool(Scenario1)
	if math.Abs(simResult.PoolRevenue-want) > 0.01 {
		t.Errorf("simulated %v vs analytic %v", simResult.PoolRevenue, want)
	}
	if simResult.RegularBlocks == 0 || simResult.UncleBlocks == 0 {
		t.Error("expected settled blocks")
	}
	if len(simResult.UncleDistances) != 6 {
		t.Errorf("got %d distance entries, want 6", len(simResult.UncleDistances))
	}
	if simResult.PoolRevenueScenario2 >= simResult.PoolRevenue {
		t.Error("scenario-2 revenue should be below scenario-1")
	}
}

func TestSimulateWithMiners(t *testing.T) {
	result, err := Simulate(0.3, 0.5, 20000, WithMiners(1000), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(result.Alpha-0.3) > 1e-9 {
		t.Errorf("realized alpha = %v, want 0.3", result.Alpha)
	}
}

func TestSimulateWithUncleLimit(t *testing.T) {
	result, err := Simulate(0.4, 0.5, 20000, WithUncleLimit(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if result.UncleBlocks == 0 {
		t.Error("expected uncles with the Ethereum limit")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(0.3, 0.5, 0); err == nil {
		t.Error("zero blocks should fail")
	}
	if _, err := Simulate(0, 0.5, 100); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestStateProbability(t *testing.T) {
	a, err := Analyze(0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pi00 := a.StateProbability(0, 0)
	if pi00 <= 0 || pi00 >= 1 {
		t.Errorf("pi(0,0) = %v out of (0,1)", pi00)
	}
	if got := a.StateProbability(2, 1); got != 0 {
		t.Errorf("invalid state probability = %v, want 0", got)
	}
}

func TestScenarioString(t *testing.T) {
	if Scenario1.String() != "scenario1" || Scenario2.String() != "scenario2" {
		t.Error("scenario names wrong")
	}
}

func TestWithStrategyVariants(t *testing.T) {
	honest, err := Simulate(0.3, 0.5, 20000, WithSeed(3), WithStrategy("honest"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(honest.PoolRevenue-0.3) > 0.02 {
		t.Errorf("honest strategy revenue %v, want ~alpha", honest.PoolRevenue)
	}
	stubborn, err := Simulate(0.3, 0.5, 20000, WithSeed(3), WithStrategy("trail-stubborn"))
	if err != nil {
		t.Fatal(err)
	}
	if stubborn.PoolRevenue == honest.PoolRevenue {
		t.Error("strategies produced identical revenue")
	}
	if _, err := Simulate(0.3, 0.5, 100, WithStrategy("eager-publish-3")); err != nil {
		t.Errorf("eager-publish-3 should parse: %v", err)
	}
}

func TestWithStrategyUnknown(t *testing.T) {
	if _, err := Simulate(0.3, 0.5, 100, WithStrategy("nonsense")); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("err = %v, want ErrUnknownStrategy", err)
	}
	if _, err := Simulate(0.3, 0.5, 100, WithStrategy("eager-publish-1")); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("eager-publish-1 err = %v, want ErrUnknownStrategy", err)
	}
}

func TestParseStrategyNames(t *testing.T) {
	for _, name := range []string{"", "algorithm1", "honest", "trail-stubborn", "eager-publish-2"} {
		if _, err := ParseStrategy(name); err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
		}
	}
	for _, name := range []string{"x", "eager-publish-", "eager-publish-0"} {
		if _, err := ParseStrategy(name); err == nil {
			t.Errorf("ParseStrategy(%q) should fail", name)
		}
	}
}
