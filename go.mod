module github.com/ethselfish/ethselfish

go 1.24
